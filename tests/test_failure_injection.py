"""End-to-end failure injection.

These tests run *misbehaving* programs through the full stack (runtime +
scheduler + protocol) and check that the right guard fires — or that the
system degrades safely when a hardware resource is exhausted.
"""

import pytest

from repro.common.errors import SimulationError, WardViolationError
from repro.hlpl.runtime import Runtime
from repro.sim.machine import Machine
from repro.sim.ops import ComputeOp
from repro.verify.ward_checker import WardChecker
from tests.conftest import tiny_config


class TestWardViolationEndToEnd:
    def test_cross_thread_raw_inside_write_phase_is_caught(self):
        """A kernel that READS another task's write inside a ward phase is
        not WARD; the dynamic checker must catch it through the runtime.
        (Disentanglement does NOT fire here — the array belongs to a common
        ancestor, which is legal; only the WARD condition is violated.)"""

        def root(ctx, n):
            arr = yield from ctx.alloc_array(n, fill=0, name="shared")
            phase = ctx.ward_begin(arr)

            def body(c, i):
                yield from arr.set(i, i)
                yield ComputeOp(50)
                # read the *neighbour's* slot: cross-thread RAW on a live
                # WARD region
                value = yield from arr.get((i + 1) % n)
                return value

            yield from ctx.parallel_for(0, n, body, grain=1)
            ctx.ward_end(phase)
            return None

        machine = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=machine.protocol.region_table)
        rt = Runtime(machine, access_monitor=checker)
        with pytest.raises(WardViolationError):
            rt.run(root, 8)

    def test_same_program_is_silent_without_the_racy_read(self):
        def root(ctx, n):
            arr = yield from ctx.alloc_array(n, fill=0, name="shared")
            phase = ctx.ward_begin(arr)

            def body(c, i):
                yield from arr.set(i, i)
                value = yield from arr.get(i)  # own slot: same-thread RAW, fine
                return value

            yield from ctx.parallel_for(0, n, body, grain=1)
            ctx.ward_end(phase)
            return "clean"

        machine = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=machine.protocol.region_table)
        rt = Runtime(machine, access_monitor=checker)
        result, _ = rt.run(root, 8)
        assert result == "clean" and checker.clean


class TestResourceExhaustion:
    def test_region_cam_overflow_degrades_gracefully(self):
        """With a 2-entry region CAM the runtime's marking mostly fails —
        and everything must still compute correctly (rejected regions just
        stay under MESI)."""
        cfg = tiny_config().replace(max_ward_regions=2)

        def root(ctx, n):
            arr = yield from ctx.tabulate(n, lambda c, i: c.value(i * 3), grain=8)
            total = yield from ctx.reduce(
                0, n, lambda c, i: arr.get(i), lambda a, b: a + b, grain=8
            )
            return total

        machine = Machine(cfg, "warden")
        result, stats = Runtime(machine).run(root, 128)
        assert result == sum(i * 3 for i in range(128))
        assert machine.protocol.region_table.rejected_adds > 0
        machine.protocol.check_invariants()

    def test_runaway_program_hits_step_guard(self):
        def root(ctx):
            while True:
                yield ComputeOp(1)

        machine = Machine(tiny_config(), "mesi")
        rt = Runtime(machine, max_steps=500)
        with pytest.raises(SimulationError):
            rt.run(root)


class TestWardEndEdges:
    def test_reads_issued_right_after_ward_end_are_coherent(self):
        """Cross-thread reads racing the ward_end boundary: reconciliation
        must have merged every thread's writes before the next phase's
        reads land, so the checker stays clean and values are right."""

        def root(ctx, n):
            arr = yield from ctx.alloc_array(n, fill=0, name="phased")
            phase = ctx.ward_begin(arr)

            def w(c, i):
                yield from arr.set(i, i * 2)

            yield from ctx.parallel_for(0, n, w, grain=1)
            ctx.ward_end(phase)
            # epoch boundary: immediately read every NEIGHBOUR's slot
            total = yield from ctx.reduce(
                0, n, lambda c, i: arr.get((i + 1) % n),
                lambda a, b: a + b, grain=1,
            )
            return total

        machine = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=machine.protocol.region_table)
        result, _ = Runtime(machine, access_monitor=checker).run(root, 16)
        assert result == sum(i * 2 for i in range(16))
        assert checker.clean
        machine.protocol.check_invariants()


class TestPartialEvictionReconciliation:
    def test_remove_region_after_private_caches_evicted_w_blocks(self):
        """A region far bigger than the private caches: many of its W
        blocks are evicted before ward_end, and reconciliation of the
        partially-evicted region must still leave the directory sane."""
        m = Machine(tiny_config(), "warden")
        base = m.sbrk(4096, 64)
        region = m.add_ward_region(0, base, base + 4096)
        assert region is not None
        from repro.common.types import AccessType

        for off in range(0, 4096, 64):
            m.access(0, base + off, 8, AccessType.STORE)
        assert len(region.blocks) > 0
        # thrash the private caches with non-region traffic so W lines
        # get evicted while the region is still active
        junk = m.sbrk(8192, 64)
        for off in range(0, 8192, 64):
            m.access(0, junk + off, 8, AccessType.STORE)
        m.protocol.check_invariants()
        m.remove_ward_region(0, region)
        m.protocol.check_invariants()
        assert len(m.protocol.region_table) == 0

    def test_two_writers_reconcile_after_partial_eviction(self):
        """Two threads write disjoint halves (false sharing at block
        granularity avoided by 64-byte stripes); cache thrash evicts part
        of each writer's W set before ward_end."""
        from repro.common.types import AccessType

        m = Machine(tiny_config(), "warden")
        base = m.sbrk(2048, 64)
        region = m.add_ward_region(0, base, base + 2048)
        for off in range(0, 2048, 64):
            writer = (off // 64) % 2
            m.access(writer, base + off, 8, AccessType.STORE)
        junk = m.sbrk(8192, 64)
        for off in range(0, 8192, 64):
            m.access(0, junk + off, 8, AccessType.STORE)
            m.access(1, junk + off, 8, AccessType.LOAD)
        m.protocol.check_invariants()
        m.remove_ward_region(1, region)
        m.protocol.check_invariants()
        assert len(m.protocol.region_table) == 0
        # post-reconciliation traffic on the ex-region stays coherent
        for off in range(0, 2048, 256):
            m.access(1, base + off, 8, AccessType.LOAD)
        m.protocol.check_invariants()

    def test_region_end_to_end_under_eviction_pressure(self):
        """Full-stack variant: a tabulate+reduce whose array exceeds the
        private caches, so WARD regions reconcile partially-evicted."""

        def root(ctx, n):
            arr = yield from ctx.tabulate(
                n, lambda c, i: c.value(i % 97), grain=16
            )
            total = yield from ctx.reduce(
                0, n, lambda c, i: arr.get(i), lambda a, b: a + b, grain=16
            )
            return total

        machine = Machine(tiny_config(), "warden")
        checker = WardChecker(region_table=machine.protocol.region_table)
        result, stats = Runtime(machine, access_monitor=checker).run(root, 768)
        assert result == sum(i % 97 for i in range(768))
        assert checker.clean
        machine.protocol.check_invariants()
        assert len(machine.protocol.region_table) == 0


class TestKernelExceptionsPropagate:
    def test_python_error_in_task_body_surfaces(self):
        def root(ctx):
            def bad(c):
                yield ComputeOp(1)
                raise RuntimeError("kernel bug")

            yield from ctx.par(bad, lambda c: c.value(1))
            return None

        machine = Machine(tiny_config(), "mesi")
        with pytest.raises(RuntimeError, match="kernel bug"):
            Runtime(machine).run(root)

    def test_out_of_bounds_surfaces(self):
        def root(ctx):
            arr = yield from ctx.alloc_array(4, fill=0)
            yield from arr.get(99)

        machine = Machine(tiny_config(), "mesi")
        with pytest.raises(IndexError):
            Runtime(machine).run(root)
