#!/usr/bin/env python3
"""Future machines (§7.3): how WARDen's benefit scales with interconnect cost.

Runs the same benchmark (palindrome, one of the paper's Fig. 12 subset) on
three machines — single socket, dual socket, and a disaggregated two-node
system with 1 us remote access — and reports WARDen's speedup and network
energy savings on each.  The paper's claim: the more expensive the
interconnect, the more valuable it is to eliminate coherence messages.

Run:  python examples/disaggregated_future.py   (takes a minute or two)
"""

from repro import compare_multi, disaggregated, dual_socket, run_pairs, single_socket
from repro.analysis.tables import render_table

BENCH = "palindrome"


def main() -> None:
    machines = [single_socket(), dual_socket(), disaggregated()]
    rows = []
    for config in machines:
        print(f"simulating {BENCH} on {config.name}...")
        metrics = compare_multi(run_pairs(BENCH, config, size="default"))
        rows.append(
            [
                config.name,
                metrics.speedup,
                metrics.interconnect_savings,
                metrics.processor_savings,
            ]
        )
    print()
    print(
        render_table(
            ["Machine", "Speedup", "Network savings %", "Processor savings %"],
            rows,
            title=f"WARDen vs MESI for '{BENCH}' across machine generations",
        )
    )
    print("\ncoherence messages get costlier with scale -> WARDen's")
    print("message elimination pays more (paper §7.3).")


if __name__ == "__main__":
    main()
