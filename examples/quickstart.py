#!/usr/bin/env python3
"""Quickstart: write a fork-join program, run it under MESI and WARDen.

The program is expressed against the HLPL API (generators that yield
memory/compute operations); the runtime executes it on a simulated
dual-socket machine under either protocol, with zero changes to the
program — exactly the paper's promise of transparency.

Run:  python examples/quickstart.py
"""

from repro import Machine, Runtime, dual_socket


def program(ctx, n):
    """Build an array of squares, then sum it — tabulate + reduce."""
    squares = yield from ctx.tabulate(n, lambda c, i: c.value(i * i), grain=32)
    total = yield from ctx.reduce(
        0, n, lambda c, i: squares.get(i), lambda a, b: a + b, grain=32
    )
    return total


def main() -> None:
    n = 2048
    expected = sum(i * i for i in range(n))
    print(f"summing the first {n} squares on a 24-core dual-socket machine\n")

    cycles = {}
    for protocol in ("mesi", "warden"):
        machine = Machine(dual_socket(), protocol)
        runtime = Runtime(machine)
        result, stats = runtime.run(program, n)
        assert result == expected, "simulated execution must be correct!"
        cycles[protocol] = stats.cycles
        coh = stats.coherence
        print(f"[{machine.protocol.name}]")
        print(f"  cycles           : {stats.cycles:,}")
        print(f"  instructions     : {stats.instructions:,}")
        print(f"  invalidations    : {coh.invalidations:,}")
        print(f"  downgrades       : {coh.downgrades:,}")
        if machine.supports_ward:
            print(f"  WARD coverage    : {coh.ward_coverage:.1%}")
            print(f"  reconciled blocks: {coh.reconciled_blocks:,}")
        print()

    print(f"WARDen speedup over MESI: {cycles['mesi'] / cycles['warden']:.2f}x")


if __name__ == "__main__":
    main()
