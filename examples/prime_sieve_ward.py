#!/usr/bin/env python3
"""The paper's flagship example (Fig. 4): a prime sieve with benign WAW races.

Several threads concurrently mark composites in the shared flags array —
write-write races, but every writer stores the same value (False), so the
races are "apathetic" and the array satisfies the WARD property (§3.3).
The dynamic WARD checker runs alongside and confirms: plenty of cross-thread
WAWs, zero violations.

Run:  python examples/prime_sieve_ward.py
"""

from repro import Machine, Runtime, WardChecker, dual_socket
from repro.bench.primes import reference, sieve_task


def count_primes(ctx, n):
    flags = yield from sieve_task(ctx, n)
    count = yield from ctx.reduce(
        0, n + 1, lambda c, i: flags.get(i),
        lambda a, b: int(a) + int(b), grain=64,
    )
    return count


def main() -> None:
    n = 3000
    machine = Machine(dual_socket(), "warden")
    checker = WardChecker(region_table=machine.protocol.region_table)
    runtime = Runtime(machine, access_monitor=checker)

    result, stats = runtime.run(count_primes, n)
    expected = reference(n)

    print(f"primes <= {n}: {result} (reference: {expected})")
    assert result == expected

    print(f"\nWARD checker: {checker.checked_accesses:,} accesses monitored")
    print(f"  cross-thread WAW races observed: {checker.waw_events:,}")
    print(f"  WARD violations (cross-thread RAW): {len(checker.violations)}")
    assert checker.clean, "the sieve must satisfy the WARD property"

    coh = stats.coherence
    print(f"\nprotocol: {coh.ward_accesses:,} accesses served in the W state "
          f"({coh.ward_coverage:.1%} of all accesses)")
    print(f"  regions opened/closed: {coh.ward_region_adds}/"
          f"{coh.ward_region_removes}")
    print(f"  blocks reconciled: {coh.reconciled_blocks:,} "
          f"(true sharing on {coh.reconciled_true_sharing_blocks})")
    print("\nbenign WAWs + no cross-thread RAW = coherence safely disabled.")


if __name__ == "__main__":
    main()
