#!/usr/bin/env python3
"""False sharing: WARDen's W state makes it disappear.

Worker tasks repeatedly read-modify-update adjacent 8-byte counters.  With
64-byte cache blocks, eight counters share each block, so under MESI the
block ping-pongs between private caches on every update (invalidation +
downgrade storms).  Under WARDen the counters sit in a WARD region — each
core keeps an effectively-private copy, and reconciliation merges the
written sectors once at the end (§5.2, §5.3).

Run:  python examples/false_sharing.py
"""

from repro import Machine, Runtime, dual_socket


def false_sharing_kernel(ctx, nworkers, iterations):
    counters = yield from ctx.alloc_array(nworkers, fill=0, name="counters")
    phase = ctx.ward_begin(counters)  # library write-phase (inject-style)

    def bump(c, worker_id):
        for _ in range(iterations):
            value = yield from counters.get(worker_id)
            yield from counters.set(worker_id, value + 1)

    yield from ctx.parallel_for(0, nworkers, bump, grain=1)
    ctx.ward_end(phase)

    total = yield from ctx.reduce(
        0, nworkers, lambda c, i: counters.get(i), lambda a, b: a + b, grain=4
    )
    return total


def main() -> None:
    nworkers, iterations = 48, 50
    print(f"{nworkers} workers x {iterations} updates to adjacent counters\n")

    cycles = {}
    for protocol in ("mesi", "warden"):
        machine = Machine(dual_socket(), protocol)
        result, stats = Runtime(machine).run(
            false_sharing_kernel, nworkers, iterations
        )
        assert result == nworkers * iterations
        cycles[protocol] = stats.cycles
        coh = stats.coherence
        print(
            f"[{machine.protocol.name:7s}] cycles={stats.cycles:>9,}  "
            f"invalidations={coh.invalidations:>6,}  "
            f"downgrades={coh.downgrades:>5,}"
        )

    print(f"\nWARDen speedup: {cycles['mesi'] / cycles['warden']:.2f}x")
    print("note how the invalidation/downgrade counts collapse under WARDen")


if __name__ == "__main__":
    main()
