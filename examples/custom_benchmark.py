#!/usr/bin/env python3
"""Add your own benchmark: a parallel histogram, end to end.

Shows the full workflow a downstream user follows:

1. write a kernel against the HLPL API (fork-join + combinators),
2. give it a plain-Python reference,
3. run it under both protocols and compare with the standard metrics,
4. let the dynamic checkers vouch for disentanglement and WARD compliance.

Run:  python examples/custom_benchmark.py
"""

import random

from repro import Machine, Runtime, WardChecker, compare, dual_socket
from repro.analysis.run import BenchResult
from repro.bench.common import input_array
from repro.energy.model import EnergyModel
from repro.sim.ops import ComputeOp

NBINS = 16


def histogram_kernel(ctx, values):
    """Per-chunk private histograms (in each leaf's own WARD heap),
    merged by a tree reduction — a classic disentangled pattern."""
    data = yield from input_array(ctx, values, name="data")
    n = len(values)
    grain = 64
    nchunks = (n + grain - 1) // grain

    def chunk_histogram(c, ci):
        # allocated in THIS task's fresh heap: WARD by construction (§4.1)
        local = yield from c.alloc_array(NBINS, fill=0, name="local-hist")
        lo, hi = ci * grain, min(ci * grain + grain, n)
        for i in range(lo, hi):
            value = yield from data.get(i)
            yield ComputeOp(2)
            bin_id = value % NBINS
            count = yield from local.get(bin_id)
            yield from local.set(bin_id, count + 1)
        return local

    def combine(c, ci):
        local = yield from chunk_histogram(c, ci)
        return local.to_list()

    def merge(a, b):
        return [x + y for x, y in zip(a, b)]

    totals = yield from ctx.reduce(0, nchunks, combine, merge, grain=1)
    return totals


def reference(values):
    out = [0] * NBINS
    for v in values:
        out[v % NBINS] += 1
    return out


def run_one(protocol, values, seed=42):
    machine = Machine(dual_socket(), protocol)
    checker = None
    if machine.supports_ward:
        checker = WardChecker(region_table=machine.protocol.region_table)
    runtime = Runtime(machine, access_monitor=checker, seed=seed)
    result, stats = runtime.run(histogram_kernel, values)
    assert result == reference(values), "kernel must match the reference"
    if checker is not None:
        assert checker.clean, "kernel must satisfy the WARD property"
    EnergyModel(machine.config).compute(stats)
    return BenchResult("histogram", machine.protocol.name,
                       machine.config.name, "custom", stats, result)


def main() -> None:
    values = [random.Random(7).randrange(1000) for _ in range(4096)]
    print(f"histogramming {len(values)} values into {NBINS} bins\n")
    mesi = run_one("mesi", values)
    warden = run_one("warden", values)
    metrics = compare(mesi, warden)
    print(f"speedup                : {metrics.speedup:.2f}x")
    print(f"inv+dg avoided /k-instr: {metrics.inv_dg_reduced_per_kilo:.1f}")
    print(f"network energy saved   : {metrics.interconnect_savings:.1f}%")
    print(f"WARD coverage          : {metrics.ward_coverage:.1%}")
    print("\nresult verified against the reference under both protocols,")
    print("disentanglement + WARD checked dynamically.")


if __name__ == "__main__":
    main()
