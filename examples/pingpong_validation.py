#!/usr/bin/env python3
"""Reproduce Table 1: validate the timing model with the Fig. 6 ping-pong.

Two hardware threads alternately write a shared word, each spinning until
the partner's value appears.  The three placements (same core / same socket
/ cross socket) must separate by roughly an order of magnitude each, as the
paper measured on real Xeon Gold 6126 hardware and in Sniper.

Run:  python examples/pingpong_validation.py
"""

from repro.analysis.tables import table1
from repro.bench.microbench import run_table1


def main() -> None:
    print("running the Fig. 6 true-sharing microbenchmark "
          "(300 iterations per scenario)...\n")
    results = run_table1(iterations=300)
    print(table1(results))
    print("\nThe simulator separates the scenarios exactly as the paper's")
    print("validation does; absolute numbers are calibrated against the")
    print("paper's Sniper column (same-socket and cross-socket rows).")


if __name__ == "__main__":
    main()
